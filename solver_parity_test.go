package tetrisched

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/compiler"
	"tetrisched/internal/milp"
	"tetrisched/internal/strl"
)

// batchedModel compiles a Fig 12-style aggregate model: `jobs` STRL requests
// over an 80-node cluster, each a Max over deferred start options, all
// sharing capacity — the shape the global scheduler hands the solver each
// cycle, scaled by batch size.
func batchedModel(tb testing.TB, jobs int, seed int64) *compiler.Compiled {
	tb.Helper()
	const nodes = 80
	const horizon = 12
	r := rand.New(rand.NewSource(seed))
	all := bitset.New(nodes)
	all.Fill()
	exprs := make([]strl.Expr, jobs)
	for j := 0; j < jobs; j++ {
		k := 1 + r.Intn(12)
		dur := int64(1 + r.Intn(4))
		value := 1 + r.Float64()*9
		var kids []strl.Expr
		for s := int64(0); s+dur <= horizon; s += 2 {
			// Later starts are worth less, like deadline-driven decay.
			v := value * (1 - float64(s)/float64(2*horizon))
			kids = append(kids, &strl.NCk{Set: all, K: k, Start: s, Dur: dur, Value: v})
		}
		exprs[j] = &strl.Max{Kids: kids}
	}
	comp, err := compiler.Compile(exprs, compiler.Options{Universe: nodes, Horizon: horizon})
	if err != nil {
		tb.Fatal(err)
	}
	return comp
}

// fig4Scenario is the §5.1 example from the examples suite.
func fig4Scenario() []strl.Expr {
	all := bitset.New(3)
	all.Fill()
	return []strl.Expr{
		&strl.NCk{Set: all, K: 2, Start: 0, Dur: 1, Value: 1},
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: all, K: 1, Start: 0, Dur: 2, Value: 1},
			&strl.NCk{Set: all, K: 1, Start: 1, Dur: 2, Value: 1},
			&strl.NCk{Set: all, K: 1, Start: 2, Dur: 2, Value: 1},
		}},
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: all, K: 3, Start: 0, Dur: 1, Value: 1},
			&strl.NCk{Set: all, K: 3, Start: 1, Dur: 1, Value: 1},
		}},
	}
}

// TestSolverParityAcrossWorkers solves the example scenarios and batched
// models under Workers=1 and Workers=4 and requires equal objectives: the
// worker count must never change what the solver finds, only how fast.
func TestSolverParityAcrossWorkers(t *testing.T) {
	type scenario struct {
		name string
		comp *compiler.Compiled
	}
	fig4, err := compiler.Compile(fig4Scenario(), compiler.Options{Universe: 3, Horizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []scenario{
		{"fig4", fig4},
		{"batch8", batchedModel(t, 8, 1)},
		{"batch24", batchedModel(t, 24, 2)},
	}
	for _, sc := range scenarios {
		serial, err := milp.Solve(sc.comp.Model, milp.Options{Workers: 1, Heuristic: sc.comp.GreedyRound})
		if err != nil {
			t.Fatalf("%s serial: %v", sc.name, err)
		}
		for _, opts := range []milp.Options{
			{Workers: 4, Heuristic: sc.comp.GreedyRound},
			{Workers: 4, Deterministic: true, Heuristic: sc.comp.GreedyRound},
		} {
			par, err := milp.Solve(sc.comp.Model, opts)
			if err != nil {
				t.Fatalf("%s workers=4 det=%v: %v", sc.name, opts.Deterministic, err)
			}
			if diff := par.Objective - serial.Objective; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("%s det=%v: objective %.9f != serial %.9f", sc.name, opts.Deterministic, par.Objective, serial.Objective)
			}
		}
	}
}

// TestSolverParityWarmVsCold flips the warm-start kill switch across every
// driver (serial, parallel-async, parallel-deterministic) on exact solves:
// dual-simplex re-solves from parent bases must change solve speed only,
// never the objective. The stats assertions keep the switch honest — the warm
// runs must actually warm-start and the cold runs must not.
func TestSolverParityWarmVsCold(t *testing.T) {
	comp := batchedModel(t, 24, 2)
	var want float64
	for i, opts := range []milp.Options{
		{Workers: 1},
		{Workers: 1, DisableWarmStart: true},
		{Workers: 4},
		{Workers: 4, DisableWarmStart: true},
		{Workers: 4, Deterministic: true},
		{Workers: 4, Deterministic: true, DisableWarmStart: true},
	} {
		opts.Heuristic = comp.GreedyRound
		sol, err := milp.Solve(comp.Model, opts)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if sol.Status != milp.StatusOptimal {
			t.Fatalf("case %d: status %v", i, sol.Status)
		}
		if i == 0 {
			want = sol.Objective
		} else if diff := sol.Objective - want; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("case %d (workers=%d det=%v cold=%v): objective %.9f != %.9f",
				i, opts.Workers, opts.Deterministic, opts.DisableWarmStart, sol.Objective, want)
		}
		if opts.DisableWarmStart {
			if sol.LP.WarmHits != 0 || sol.LP.WarmFallbacks != 0 {
				t.Errorf("case %d: kill switch left warm activity %+v", i, sol.LP)
			}
		} else if sol.Nodes > 1 && sol.LP.WarmHits == 0 {
			t.Errorf("case %d: %d nodes explored but no warm hits %+v", i, sol.Nodes, sol.LP)
		}
	}
}

// TestWarmStartHitRate pins the acceptance bar: on a Fig 12-style batched
// exact solve, >80% of branch-and-bound node LPs must re-solve warm from
// their parent basis (only the root is inherently cold).
func TestWarmStartHitRate(t *testing.T) {
	for _, jobs := range []int{16, 24} {
		comp := batchedModel(t, jobs, 2)
		// Cuts and pseudocost branching exist to shrink this tree — disable
		// them here so the search explores enough nodes to measure the
		// warm-start machinery they would otherwise bypass.
		sol, err := milp.Solve(comp.Model, milp.Options{
			Workers: 1, Heuristic: comp.GreedyRound,
			DisableCuts: true, DisablePseudocost: true,
		})
		if err != nil {
			t.Fatalf("batch%d: %v", jobs, err)
		}
		if sol.Nodes < 10 {
			t.Fatalf("batch%d explored only %d nodes; instance too easy to measure hit rate", jobs, sol.Nodes)
		}
		rate := float64(sol.LP.WarmHits) / float64(sol.Nodes)
		t.Logf("batch%d: nodes=%d LP=%+v hit rate=%.1f%%", jobs, sol.Nodes, sol.LP, 100*rate)
		if rate <= 0.8 {
			t.Errorf("batch%d: warm-start hit rate %.1f%% ≤ 80%%", jobs, 100*rate)
		}
	}
}

// BenchmarkBatchedSolveSerial / ...Parallel measure the same Fig 12-style
// aggregate solve to a 10% gap with one worker vs one per CPU. On multi-core
// hosts the parallel driver reaches the gap in less wall-clock time; on a
// single-CPU host the two coincide (Workers=GOMAXPROCS=1).
func benchBatchedSolve(b *testing.B, jobs, workers int) {
	comp := batchedModel(b, jobs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := milp.Solve(comp.Model, milp.Options{
			Gap:       0.1,
			Workers:   workers,
			Heuristic: comp.GreedyRound,
		})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Values == nil {
			b.Fatal("no solution")
		}
	}
}

func BenchmarkBatchedSolve8Serial(b *testing.B) { benchBatchedSolve(b, 8, 1) }
func BenchmarkBatchedSolve8Parallel(b *testing.B) {
	benchBatchedSolve(b, 8, runtime.GOMAXPROCS(0))
}
func BenchmarkBatchedSolve24Serial(b *testing.B) { benchBatchedSolve(b, 24, 1) }
func BenchmarkBatchedSolve24Parallel(b *testing.B) {
	benchBatchedSolve(b, 24, runtime.GOMAXPROCS(0))
}
func BenchmarkBatchedSolve48Serial(b *testing.B) { benchBatchedSolve(b, 48, 1) }
func BenchmarkBatchedSolve48Parallel(b *testing.B) {
	benchBatchedSolve(b, 48, runtime.GOMAXPROCS(0))
}

// TestSerialRoutingCrossover verifies the small-model routing decision on
// both sides of milp.DefaultSerialCutoff: a 24-job batch reduces below the
// cutoff, so a multi-worker solve runs the serial driver (Workers=1 in the
// solution); a 48-job batch stays above it and keeps the parallel driver;
// and SerialCutoff=-1 disables routing entirely.
func TestSerialRoutingCrossover(t *testing.T) {
	small := batchedModel(t, 24, 1)
	routed, err := milp.Solve(small.Model, milp.Options{Gap: 0.1, Workers: 4, Heuristic: small.GreedyRound})
	if err != nil {
		t.Fatal(err)
	}
	if routed.Workers != 1 {
		t.Errorf("below-cutoff model: Workers = %d, want 1 (routed to serial driver)", routed.Workers)
	}
	forced, err := milp.Solve(small.Model, milp.Options{Gap: 0.1, Workers: 4, SerialCutoff: -1, Heuristic: small.GreedyRound})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Workers != 4 {
		t.Errorf("SerialCutoff=-1: Workers = %d, want 4 (routing disabled)", forced.Workers)
	}
	if diff := math.Abs(routed.Objective - forced.Objective); diff > 0.1/(1-0.1)*math.Abs(forced.Objective)+1e-6 {
		t.Errorf("routing changed the solution beyond the gap: %.9f vs %.9f", routed.Objective, forced.Objective)
	}
	big := batchedModel(t, 48, 1)
	par, err := milp.Solve(big.Model, milp.Options{Gap: 0.1, Workers: 4, Heuristic: big.GreedyRound})
	if err != nil {
		t.Fatal(err)
	}
	if par.Workers != 4 {
		t.Errorf("above-cutoff model: Workers = %d, want 4 (parallel driver)", par.Workers)
	}
}

// benchSmallModelRouting pins the serial-routing crossover: a 24-job batch
// reduces to ≈4.7k vars×rows after presolve — below milp.DefaultSerialCutoff
// — so a Workers-per-CPU solve routes to the serial driver; SerialCutoff=-1
// forces the parallel driver on the same model and measures the coordination
// overhead the routing avoids. Deliberately named outside the Makefile's
// bench regex: the pair pins a ratio against each other, not an absolute
// number tracked in BENCH_milp.json.
func benchSmallModelRouting(b *testing.B, cutoff int) {
	comp := batchedModel(b, 24, 1)
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := milp.Solve(comp.Model, milp.Options{
			Gap: 0.1, Workers: workers, SerialCutoff: cutoff, Heuristic: comp.GreedyRound,
		})
		if err != nil || sol.Values == nil {
			b.Fatalf("solve failed: %v", err)
		}
	}
}

func BenchmarkSmallModelRoutedSerial(b *testing.B)   { benchSmallModelRouting(b, 0) }
func BenchmarkSmallModelForcedParallel(b *testing.B) { benchSmallModelRouting(b, -1) }

// decomposableModel compiles a batch that provably splits: nBlocks disjoint
// node blocks with jobsPer jobs each, every job a Max over deferred starts on
// its own block. Blocks never share capacity, so Components() must return at
// least nBlocks sub-models (more when light per-block contention drops supply
// rows and decouples jobs further).
func decomposableModel(tb testing.TB, nBlocks, jobsPer int, seed int64) *compiler.Compiled {
	tb.Helper()
	const horizon = 8
	r := rand.New(rand.NewSource(seed))
	blockSize := 6 + r.Intn(6)
	nodes := nBlocks * blockSize
	var exprs []strl.Expr
	for blk := 0; blk < nBlocks; blk++ {
		set := bitset.New(nodes)
		for n := blk * blockSize; n < (blk+1)*blockSize; n++ {
			set.Add(n)
		}
		for j := 0; j < jobsPer; j++ {
			k := 1 + r.Intn(blockSize)
			dur := int64(1 + r.Intn(3))
			value := 1 + r.Float64()*9
			stride := int64(1 + r.Intn(2))
			var kids []strl.Expr
			for s := int64(0); s+dur <= horizon; s += stride {
				v := value * (1 - float64(s)/float64(2*horizon))
				kids = append(kids, &strl.NCk{Set: set, K: k, Start: s, Dur: dur, Value: v})
			}
			exprs = append(exprs, &strl.Max{Kids: kids})
		}
	}
	comp, err := compiler.Compile(exprs, compiler.Options{Universe: nodes, Horizon: horizon})
	if err != nil {
		tb.Fatal(err)
	}
	return comp
}

// componentParts wraps a compiled batch's components as milp.Parts.
func componentParts(comps []*compiler.Component) []milp.Part {
	parts := make([]milp.Part, len(comps))
	for i, cc := range comps {
		parts[i] = milp.Part{Model: cc.Model, VarMap: cc.VarMap, Heuristic: cc.GreedyRound}
	}
	return parts
}

// TestDecompositionParityProperty is the property test of the decomposition
// acceptance criteria: across ≥200 seeded random decomposable instances, the
// monolithic and decomposed solves must agree on objective within the
// configured gap, merged telemetry must equal the sum over components, the
// merged point must be feasible for the full model, and repeated
// deterministic decomposed solves must return byte-identical decisions.
func TestDecompositionParityProperty(t *testing.T) {
	const instances = 220
	for i := 0; i < instances; i++ {
		seed := int64(1000 + i)
		r := rand.New(rand.NewSource(seed))
		nBlocks := 2 + r.Intn(3)
		jobsPer := 1 + r.Intn(3)
		comp := decomposableModel(t, nBlocks, jobsPer, seed)
		gap := 0.0
		if i%3 == 1 {
			gap = 0.1
		}
		opts := milp.Options{Gap: gap, Workers: 2, Deterministic: true}

		monoOpts := opts
		monoOpts.Heuristic = comp.GreedyRound
		mono, err := milp.Solve(comp.Model, monoOpts)
		if err != nil {
			t.Fatalf("seed %d: monolithic solve: %v", seed, err)
		}

		comps := comp.Components()
		if len(comps) < nBlocks {
			t.Fatalf("seed %d: %d components for %d disjoint blocks", seed, len(comps), nBlocks)
		}
		merged, partSols, err := milp.SolveParts(componentParts(comps), comp.Model.NumVars(), opts)
		if err != nil {
			t.Fatalf("seed %d: decomposed solve: %v", seed, err)
		}
		if merged.Values == nil {
			t.Fatalf("seed %d: decomposed solve returned no values (status %v)", seed, merged.Status)
		}

		// Objective parity within the configured gap: each side is within gap
		// of the true optimum, and obj ≤ OPT ≤ max(obj)/(1−gap).
		tol := 1e-6
		if gap > 0 {
			tol += gap / (1 - gap) * math.Max(math.Abs(mono.Objective), math.Abs(merged.Objective))
		}
		if diff := math.Abs(mono.Objective - merged.Objective); diff > tol {
			t.Errorf("seed %d (gap %.2f): monolithic %.9f vs decomposed %.9f differ by %.9f > %.9f",
				seed, gap, mono.Objective, merged.Objective, diff, tol)
		}
		if !comp.Model.IsFeasible(merged.Values, 1e-6) {
			t.Errorf("seed %d: merged decomposed point infeasible for the full model", seed)
		}

		// Merged telemetry equals the sum over components.
		var nodes int
		var iters int64
		var warm, cold int
		var runtime int64
		for ci, ps := range partSols {
			if ps == nil {
				t.Fatalf("seed %d: component %d failed", seed, ci)
			}
			nodes += ps.Nodes
			iters += ps.LP.Iterations
			warm += ps.LP.WarmHits
			cold += ps.LP.ColdStarts
			runtime += int64(ps.Runtime)
		}
		if merged.Nodes != nodes || merged.LP.Iterations != iters ||
			merged.LP.WarmHits != warm || merged.LP.ColdStarts != cold ||
			int64(merged.Runtime) != runtime {
			t.Errorf("seed %d: merged stats (nodes=%d iters=%d warm=%d cold=%d runtime=%d) != part sums (%d %d %d %d %d)",
				seed, merged.Nodes, merged.LP.Iterations, merged.LP.WarmHits, merged.LP.ColdStarts, int64(merged.Runtime),
				nodes, iters, warm, cold, runtime)
		}

		// Deterministic decomposed solves return byte-identical decisions.
		if i%8 == 0 {
			again, _, err := milp.SolveParts(componentParts(comp.Components()), comp.Model.NumVars(), opts)
			if err != nil {
				t.Fatalf("seed %d: repeat decomposed solve: %v", seed, err)
			}
			if !reflect.DeepEqual(merged.Values, again.Values) {
				t.Errorf("seed %d: deterministic decomposed runs diverged", seed)
			}
		}
	}
}

// TestPresolveParityProperty is the property test of the presolve acceptance
// criteria: across ≥200 seeded compiled instances, solves with presolve on
// vs DisablePresolve agree on objective within the configured gap, lifted
// solutions are full-length and feasible in the original (unreduced) model,
// and deterministic presolved reruns return byte-identical values. The stats
// assertions keep the kill switch honest: presolved runs must report their
// reduction work and disabled runs must report none.
func TestPresolveParityProperty(t *testing.T) {
	const instances = 220
	for i := 0; i < instances; i++ {
		seed := int64(5000 + i)
		r := rand.New(rand.NewSource(seed))
		var comp *compiler.Compiled
		if i%2 == 0 {
			comp = batchedModel(t, 2+r.Intn(6), seed)
		} else {
			comp = decomposableModel(t, 1+r.Intn(3), 1+r.Intn(3), seed)
		}
		gap := 0.0
		if i%3 == 1 {
			gap = 0.1
		}
		opts := milp.Options{Gap: gap, Workers: 2, Deterministic: true, Heuristic: comp.GreedyRound}
		on, err := milp.Solve(comp.Model, opts)
		if err != nil {
			t.Fatalf("seed %d: presolved solve: %v", seed, err)
		}
		offOpts := opts
		offOpts.DisablePresolve = true
		off, err := milp.Solve(comp.Model, offOpts)
		if err != nil {
			t.Fatalf("seed %d: presolve-off solve: %v", seed, err)
		}
		if on.Values == nil || off.Values == nil {
			t.Fatalf("seed %d: missing values (on=%v off=%v)", seed, on.Status, off.Status)
		}

		// Objective parity within the configured gap: each side is within gap
		// of the true optimum, so they differ by at most gap/(1−gap)·|obj|.
		tol := 1e-6
		if gap > 0 {
			tol += gap / (1 - gap) * math.Max(math.Abs(on.Objective), math.Abs(off.Objective))
		}
		if diff := math.Abs(on.Objective - off.Objective); diff > tol {
			t.Errorf("seed %d (gap %.2f): presolved %.9f vs direct %.9f differ by %.9f > %.9f",
				seed, gap, on.Objective, off.Objective, diff, tol)
		}

		// The lifted solution must be a full-space point feasible in the
		// original model — the postsolve contract.
		if len(on.Values) != comp.Model.NumVars() {
			t.Fatalf("seed %d: lifted solution has %d values for a %d-var model",
				seed, len(on.Values), comp.Model.NumVars())
		}
		if !comp.Model.IsFeasible(on.Values, 1e-6) {
			t.Errorf("seed %d: lifted presolved point infeasible in the original model", seed)
		}

		// Kill-switch honesty: compiled models always have structure to
		// reduce, so presolve must report work; disabled runs must not.
		if on.Presolve.Rounds == 0 {
			t.Errorf("seed %d: presolved run reports zero fixpoint rounds", seed)
		}
		if off.Presolve != (milp.PresolveStats{}) {
			t.Errorf("seed %d: DisablePresolve left presolve activity %+v", seed, off.Presolve)
		}

		// Deterministic presolved reruns are byte-identical.
		if i%8 == 0 {
			again, err := milp.Solve(comp.Model, opts)
			if err != nil {
				t.Fatalf("seed %d: repeat presolved solve: %v", seed, err)
			}
			if !reflect.DeepEqual(on.Values, again.Values) {
				t.Errorf("seed %d: deterministic presolved runs diverged", seed)
			}
		}
	}
}

// benchComponentSolve measures the same decomposable 12-job instance solved
// as one coupled MILP vs. split into its components — the multiplicative
// search-tree shrink the decomposition exists for.
func benchComponentSolve(b *testing.B, split bool) {
	comp := decomposableModel(b, 4, 3, 7)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if split {
			merged, _, err := milp.SolveParts(componentParts(comp.Components()), comp.Model.NumVars(),
				milp.Options{Gap: 0.1, Workers: workers, Deterministic: true})
			if err != nil || merged.Values == nil {
				b.Fatalf("decomposed solve failed: %v (%v)", err, merged)
			}
		} else {
			sol, err := milp.Solve(comp.Model, milp.Options{
				Gap: 0.1, Workers: workers, Deterministic: true, Heuristic: comp.GreedyRound,
			})
			if err != nil || sol.Values == nil {
				b.Fatalf("monolithic solve failed: %v", err)
			}
		}
	}
}

func BenchmarkBatchedSolveComponentsMono(b *testing.B)  { benchComponentSolve(b, false) }
func BenchmarkBatchedSolveComponentsSplit(b *testing.B) { benchComponentSolve(b, true) }

func BenchmarkBatchedSolve480Serial(b *testing.B) { benchBatchedSolve(b, 480, 1) }
func BenchmarkBatchedSolve480Parallel(b *testing.B) {
	benchBatchedSolve(b, 480, runtime.GOMAXPROCS(0))
}

// TestBasisEngineParityProperty is the property test of the LU acceptance
// criteria: across ≥200 seeded compiled instances, solves on the sparse LU
// engine (the default) agree with the dense-inverse kill switch, with cuts
// disabled, and with pseudocost branching disabled — each within the
// configured gap. The stats assertions keep every switch honest: dense runs
// must never push an eta through the sparse chain, DisableCuts runs must
// report zero cut activity, DisablePseudocost runs must never take a
// pseudocost decision, and across the suite the default configuration must
// actually exercise all three features.
func TestBasisEngineParityProperty(t *testing.T) {
	const instances = 220
	var (
		luEtas, luFactors  int64
		cutRounds, cutsAdd int64
		pcBranches         int64
	)
	for i := 0; i < instances; i++ {
		seed := int64(9000 + i)
		r := rand.New(rand.NewSource(seed))
		var comp *compiler.Compiled
		if i%2 == 0 {
			comp = batchedModel(t, 2+r.Intn(8), seed)
		} else {
			comp = decomposableModel(t, 1+r.Intn(3), 1+r.Intn(3), seed)
		}
		gap := 0.0
		if i%3 == 1 {
			gap = 0.1
		}
		base := milp.Options{Gap: gap, Workers: 2, Deterministic: true, Heuristic: comp.GreedyRound}

		lu, err := milp.Solve(comp.Model, base)
		if err != nil {
			t.Fatalf("seed %d: LU solve: %v", seed, err)
		}
		variants := []struct {
			name string
			mut  func(*milp.Options)
			chk  func(*milp.Solution)
		}{
			{"DenseBasis", func(o *milp.Options) { o.DenseBasis = true }, func(s *milp.Solution) {
				if s.LP.EtaUpdates != 0 {
					t.Errorf("seed %d: DenseBasis run pushed %d sparse eta updates", seed, s.LP.EtaUpdates)
				}
			}},
			{"DisableCuts", func(o *milp.Options) { o.DisableCuts = true }, func(s *milp.Solution) {
				if s.Cuts != (milp.CutStats{}) {
					t.Errorf("seed %d: DisableCuts left cut activity %+v", seed, s.Cuts)
				}
			}},
			{"DisablePseudocost", func(o *milp.Options) { o.DisablePseudocost = true }, func(s *milp.Solution) {
				if s.Branch.Pseudocost != 0 {
					t.Errorf("seed %d: DisablePseudocost took %d pseudocost decisions", seed, s.Branch.Pseudocost)
				}
			}},
		}
		for _, v := range variants {
			opts := base
			v.mut(&opts)
			sol, err := milp.Solve(comp.Model, opts)
			if err != nil {
				t.Fatalf("seed %d: %s solve: %v", seed, v.name, err)
			}
			if lu.Values == nil || sol.Values == nil {
				t.Fatalf("seed %d: missing values (lu=%v %s=%v)", seed, lu.Status, v.name, sol.Status)
			}
			// Objective parity within the configured gap: each side is within
			// gap of the true optimum, so they differ by ≤ gap/(1−gap)·|obj|.
			tol := 1e-6
			if gap > 0 {
				tol += gap / (1 - gap) * math.Max(math.Abs(lu.Objective), math.Abs(sol.Objective))
			}
			if diff := math.Abs(lu.Objective - sol.Objective); diff > tol {
				t.Errorf("seed %d (gap %.2f): LU %.9f vs %s %.9f differ by %.9f > %.9f",
					seed, gap, lu.Objective, v.name, sol.Objective, diff, tol)
			}
			v.chk(sol)
		}

		// Deterministic LU reruns are byte-identical.
		if i%8 == 0 {
			again, err := milp.Solve(comp.Model, base)
			if err != nil {
				t.Fatalf("seed %d: repeat LU solve: %v", seed, err)
			}
			if !reflect.DeepEqual(lu.Values, again.Values) {
				t.Errorf("seed %d: deterministic LU runs diverged", seed)
			}
		}

		luEtas += lu.LP.EtaUpdates
		luFactors += lu.LP.Factorizations
		cutRounds += int64(lu.Cuts.Rounds)
		cutsAdd += int64(lu.Cuts.Cover + lu.Cuts.Clique)
		pcBranches += lu.Branch.Pseudocost
	}
	// Positive-side honesty: across 220 instances the default configuration
	// must actually run the machinery the switches disable.
	if luEtas == 0 {
		t.Error("no sparse eta updates across the whole suite; LU path not exercised")
	}
	if luFactors == 0 {
		t.Error("no factorizations across the whole suite; LU path not exercised")
	}
	if cutRounds == 0 || cutsAdd == 0 {
		t.Errorf("no root cuts separated across the whole suite (rounds=%d cuts=%d)", cutRounds, cutsAdd)
	}
	if pcBranches == 0 {
		t.Error("no pseudocost branching decisions across the whole suite")
	}
}
