module tetrisched

go 1.22
