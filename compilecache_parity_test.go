package tetrisched

import (
	"reflect"
	"testing"

	"tetrisched/internal/core"
	"tetrisched/internal/sim"
)

// TestCompileCacheParityProperty is the policy-invariance property of the
// cycle front end: across seeded multi-cycle simulations — arrivals,
// completions, drops, overruns, expression-TTL expiries, node failures,
// preemptions, truncation, and sharded cycles — a run with the
// expression/compile caches enabled must produce byte-identical per-job
// outcomes to the same run with DisableCompileCache. It reuses the
// incremental layer's instance generator (different seed range) so both
// cache layers face the same adversarial scenario space, and adds sharded
// instances because the cached batch also carries shard routing. The stats
// assertions keep both sides honest: disabled runs must never touch either
// cache, and enabled runs must actually skip work (every crafted steady
// instance, and in aggregate).
func TestCompileCacheParityProperty(t *testing.T) {
	const instances = 220
	totalSkips, totalExprHits := 0, 0
	for i := 0; i < instances; i++ {
		seed := int64(17000 + i)
		inst := randomParityInstance(i, seed)
		// Every 6th instance runs sharded: offset from the steady stride
		// (i%4==0) so sharding also meets random clusters and failures.
		if i%6 == 5 {
			inst.cfg.Shards = 4
		}
		run := func(disable bool) (*sim.Result, *core.Scheduler) {
			cfg := inst.cfg
			cfg.DisableCompileCache = disable
			sched := core.New(inst.c, cfg)
			res, err := sim.Run(sim.Config{
				Cluster: inst.c, Jobs: inst.mkJobs(), Scheduler: sched, Failures: inst.failures,
			})
			if err != nil {
				t.Fatalf("seed %d (disable=%v): %v", seed, disable, err)
			}
			return res, sched
		}
		on, onSched := run(false)
		off, offSched := run(true)

		if !reflect.DeepEqual(on.Stats, off.Stats) {
			for j := range on.Stats {
				if !reflect.DeepEqual(on.Stats[j], off.Stats[j]) {
					t.Errorf("seed %d: job %d diverged:\n  cached:   %+v\n  disabled: %+v",
						seed, j, on.Stats[j], off.Stats[j])
				}
			}
		}
		if on.Makespan != off.Makespan || on.BusyNodeSeconds != off.BusyNodeSeconds || on.Stalled != off.Stalled {
			t.Errorf("seed %d: run shape diverged: makespan %d vs %d, busy %d vs %d, stalled %v vs %v",
				seed, on.Makespan, off.Makespan, on.BusyNodeSeconds, off.BusyNodeSeconds, on.Stalled, off.Stalled)
		}
		offS := offSched.Stats
		if offS.CompileSkips != 0 || offS.ExprHits != 0 || offS.ExprMisses != 0 {
			t.Errorf("seed %d: DisableCompileCache run touched the front-end caches (skips=%d exprHits=%d exprMisses=%d)",
				seed, offS.CompileSkips, offS.ExprHits, offS.ExprMisses)
		}
		if inst.steady && onSched.Stats.CompileSkips == 0 {
			t.Errorf("seed %d: crafted steady-state instance skipped no compiles", seed)
		}
		totalSkips += onSched.Stats.CompileSkips
		totalExprHits += onSched.Stats.ExprHits
	}
	if totalSkips == 0 || totalExprHits == 0 {
		t.Errorf("front-end caches never fired across any instance (skips=%d exprHits=%d); the parity property never exercised reuse",
			totalSkips, totalExprHits)
	}
	t.Logf("aggregate across %d instances: compile skips %d, expression hits %d", instances, totalSkips, totalExprHits)
}
