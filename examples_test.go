package tetrisched

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example main as a subprocess and checks for
// its expected output — the examples double as end-to-end acceptance tests
// of the public behavior they demonstrate.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess examples")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"met SLO", "per-job outcomes"}},
		{"milp-example", []string{"objective = 3", "without plan-ahead: objective = 2"}},
		{"gpu-softconstraints", []string{"WAITED for the GPU nodes", "FELL BACK to plain nodes"}},
		{"mpi-gang", []string{"rack-local (fast)", "replica placed"}},
		{"toy-schedules", []string{"Availability", "MPI", "GPU"}},
		{"reservation", []string{"Rayon/CS", "TetriSched", "preemptions="}},
		{"elastic", []string{"ran 8 wide for 40s", "ran 2 wide for 160s"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			bin := filepath.Join(t.TempDir(), c.dir)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+c.dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example timed out")
			}
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
